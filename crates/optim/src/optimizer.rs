//! Scalar optimizer update rules with explicit auxiliary-state slots.
//!
//! Each optimizer declares how many f32 "slots" of auxiliary state it keeps
//! per parameter (Adam keeps two: the moments), and updates one parameter at
//! a time. The buffer kernels in [`crate::kernels`] vectorize over these
//! scalar rules, and the in-storage engine executes exactly the same rules,
//! so any disagreement between host and in-storage results is a layout or
//! protocol bug — never an arithmetic one.

use crate::hyper::{AdamParams, MomentumParams};
use serde::{Deserialize, Serialize};

/// Identifies an optimizer family (used in configs, reports and the
/// in-storage command protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with bias correction.
    Adam,
    /// Adam with decoupled weight decay.
    AdamW,
    /// SGD with classical momentum.
    SgdMomentum,
    /// Adagrad.
    Adagrad,
    /// Lion (evolved sign momentum): half the auxiliary state of Adam.
    Lion,
}

impl OptimizerKind {
    /// Auxiliary f32 state slots per parameter (excluding the fp32 master
    /// weight, which every mixed-precision optimizer keeps).
    pub fn state_slots(self) -> usize {
        match self {
            OptimizerKind::Adam | OptimizerKind::AdamW => 2,
            OptimizerKind::SgdMomentum | OptimizerKind::Adagrad | OptimizerKind::Lion => 1,
        }
    }

    /// Stable wire identifier for the in-storage command protocol.
    pub fn wire_id(self) -> u8 {
        match self {
            OptimizerKind::Adam => 0,
            OptimizerKind::AdamW => 1,
            OptimizerKind::SgdMomentum => 2,
            OptimizerKind::Adagrad => 3,
            OptimizerKind::Lion => 4,
        }
    }

    /// Inverse of [`wire_id`](Self::wire_id).
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(OptimizerKind::Adam),
            1 => Some(OptimizerKind::AdamW),
            2 => Some(OptimizerKind::SgdMomentum),
            3 => Some(OptimizerKind::Adagrad),
            4 => Some(OptimizerKind::Lion),
            _ => None,
        }
    }

    /// All supported kinds (for sweeps).
    pub fn all() -> [OptimizerKind; 5] {
        [
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::SgdMomentum,
            OptimizerKind::Adagrad,
            OptimizerKind::Lion,
        ]
    }
}

/// An element-wise optimizer update rule.
///
/// Implementations must be pure functions of their inputs: same
/// `(weight, slots, grad, step)` ⇒ same outputs, bit for bit. The
/// correctness experiments depend on this.
pub trait Optimizer: std::fmt::Debug + Send + Sync {
    /// Which family this is.
    fn kind(&self) -> OptimizerKind;

    /// Auxiliary f32 slots per parameter.
    fn state_slots(&self) -> usize {
        self.kind().state_slots()
    }

    /// Updates one parameter.
    ///
    /// * `w` — fp32 master weight before the update.
    /// * `slots` — auxiliary state (length = [`state_slots`](Self::state_slots)),
    ///   updated in place.
    /// * `grad` — gradient, already widened to f32.
    /// * `step` — 1-based global step number (for bias correction).
    ///
    /// Returns the new master weight.
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, step: u64) -> f32;

    /// Hyperparameters in wire order `[lr, beta1|momentum, beta2, eps,
    /// weight_decay]` (unused trailing entries zero) — what the IST-UPDATE
    /// command carries.
    fn hyper_wire(&self) -> [f32; 5];

    /// Replaces the learning rate (driven by [`schedules`] on the host —
    /// the new value travels in the next command).
    ///
    /// [`schedules`]: https://docs.rs/dnn-model
    fn set_lr(&mut self, lr: f32);
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adam {
    /// Hyperparameters.
    pub params: AdamParams,
}

impl Adam {
    /// Creates an Adam rule with the given hyperparameters.
    pub fn new(params: AdamParams) -> Self {
        Adam { params }
    }
}

impl Optimizer for Adam {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Adam
    }

    fn hyper_wire(&self) -> [f32; 5] {
        let p = &self.params;
        [p.lr, p.beta1, p.beta2, p.eps, p.weight_decay]
    }

    fn set_lr(&mut self, lr: f32) {
        self.params.lr = lr;
    }

    #[inline]
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, step: u64) -> f32 {
        let p = &self.params;
        let m = p.beta1 * slots[0] + (1.0 - p.beta1) * grad;
        let v = p.beta2 * slots[1] + (1.0 - p.beta2) * grad * grad;
        slots[0] = m;
        slots[1] = v;
        let bc1 = 1.0 - p.beta1.powi(step as i32);
        let bc2 = 1.0 - p.beta2.powi(step as i32);
        let m_hat = m / bc1;
        let v_hat = v / bc2;
        w - p.lr * m_hat / (v_hat.sqrt() + p.eps)
    }
}

/// AdamW: Adam with decoupled weight decay applied to the master weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdamW {
    /// Hyperparameters (including `weight_decay`).
    pub params: AdamParams,
}

impl AdamW {
    /// Creates an AdamW rule with the given hyperparameters.
    pub fn new(params: AdamParams) -> Self {
        AdamW { params }
    }
}

impl Optimizer for AdamW {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::AdamW
    }

    fn hyper_wire(&self) -> [f32; 5] {
        let p = &self.params;
        [p.lr, p.beta1, p.beta2, p.eps, p.weight_decay]
    }

    fn set_lr(&mut self, lr: f32) {
        self.params.lr = lr;
    }

    #[inline]
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, step: u64) -> f32 {
        let p = &self.params;
        let m = p.beta1 * slots[0] + (1.0 - p.beta1) * grad;
        let v = p.beta2 * slots[1] + (1.0 - p.beta2) * grad * grad;
        slots[0] = m;
        slots[1] = v;
        let bc1 = 1.0 - p.beta1.powi(step as i32);
        let bc2 = 1.0 - p.beta2.powi(step as i32);
        let m_hat = m / bc1;
        let v_hat = v / bc2;
        let w = w - p.lr * p.weight_decay * w; // decoupled decay
        w - p.lr * m_hat / (v_hat.sqrt() + p.eps)
    }
}

/// SGD with classical momentum: `m ← μm + g; w ← w − lr·m`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SgdMomentum {
    /// Hyperparameters.
    pub params: MomentumParams,
}

impl SgdMomentum {
    /// Creates an SGD-momentum rule with the given hyperparameters.
    pub fn new(params: MomentumParams) -> Self {
        SgdMomentum { params }
    }
}

impl Optimizer for SgdMomentum {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::SgdMomentum
    }

    fn hyper_wire(&self) -> [f32; 5] {
        let p = &self.params;
        [p.lr, p.momentum, 0.0, p.eps, 0.0]
    }

    fn set_lr(&mut self, lr: f32) {
        self.params.lr = lr;
    }

    #[inline]
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, _step: u64) -> f32 {
        let p = &self.params;
        let m = p.momentum * slots[0] + grad;
        slots[0] = m;
        w - p.lr * m
    }
}

/// Adagrad: `acc ← acc + g²; w ← w − lr·g/(√acc + ε)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adagrad {
    /// Hyperparameters (`momentum` is ignored).
    pub params: MomentumParams,
}

impl Adagrad {
    /// Creates an Adagrad rule with the given hyperparameters.
    pub fn new(params: MomentumParams) -> Self {
        Adagrad { params }
    }
}

impl Optimizer for Adagrad {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Adagrad
    }

    fn hyper_wire(&self) -> [f32; 5] {
        let p = &self.params;
        [p.lr, p.momentum, 0.0, p.eps, 0.0]
    }

    fn set_lr(&mut self, lr: f32) {
        self.params.lr = lr;
    }

    #[inline]
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, _step: u64) -> f32 {
        let p = &self.params;
        let acc = slots[0] + grad * grad;
        slots[0] = acc;
        w - p.lr * grad / (acc.sqrt() + p.eps)
    }
}

/// Lion (Chen et al.): sign of an interpolated momentum, with decoupled
/// weight decay. Keeps a single moment — half of Adam's auxiliary state —
/// which for flash-resident optimizers is 4 B/param of traffic and wear
/// saved.
///
/// Update: `u = sign(β₁·m + (1−β₁)·g)`, `w ← w(1 − lr·λ) − lr·u`,
/// `m ← β₂·m + (1−β₂)·g`.
#[derive(Debug, Clone, Copy)]
pub struct Lion {
    /// Hyperparameters: `lr`, `beta1` (interpolation), `beta2` (momentum
    /// decay), `weight_decay`. `eps` is unused.
    pub params: AdamParams,
}

impl Default for Lion {
    fn default() -> Self {
        // Lion wants a ~3–10x smaller lr than AdamW and stronger decay.
        Lion {
            params: AdamParams {
                lr: 1e-5,
                beta1: 0.9,
                beta2: 0.99,
                eps: 1e-8,
                weight_decay: 0.1,
            },
        }
    }
}

impl Lion {
    /// Creates a Lion rule with the given hyperparameters.
    pub fn new(params: AdamParams) -> Self {
        Lion { params }
    }
}

impl Optimizer for Lion {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Lion
    }

    fn hyper_wire(&self) -> [f32; 5] {
        let p = &self.params;
        [p.lr, p.beta1, p.beta2, p.eps, p.weight_decay]
    }

    fn set_lr(&mut self, lr: f32) {
        self.params.lr = lr;
    }

    #[inline]
    fn update_scalar(&self, w: f32, slots: &mut [f32], grad: f32, _step: u64) -> f32 {
        let p = &self.params;
        let m = slots[0];
        let interp = p.beta1 * m + (1.0 - p.beta1) * grad;
        let update = if interp > 0.0 {
            1.0
        } else if interp < 0.0 {
            -1.0
        } else {
            0.0
        };
        slots[0] = p.beta2 * m + (1.0 - p.beta2) * grad;
        let w = w - p.lr * p.weight_decay * w;
        w - p.lr * update
    }
}

/// Constructs a boxed optimizer of the given kind with default-ish
/// hyperparameters (used by configs and the command protocol decoder).
pub fn make_optimizer(
    kind: OptimizerKind,
    adam: AdamParams,
    mom: MomentumParams,
) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Adam => Box::new(Adam::new(adam)),
        OptimizerKind::AdamW => Box::new(AdamW::new(adam)),
        OptimizerKind::SgdMomentum => Box::new(SgdMomentum::new(mom)),
        OptimizerKind::Adagrad => Box::new(Adagrad::new(mom)),
        OptimizerKind::Lion => Box::new(Lion::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_per_kind() {
        assert_eq!(OptimizerKind::Adam.state_slots(), 2);
        assert_eq!(OptimizerKind::AdamW.state_slots(), 2);
        assert_eq!(OptimizerKind::SgdMomentum.state_slots(), 1);
        assert_eq!(OptimizerKind::Adagrad.state_slots(), 1);
    }

    #[test]
    fn wire_ids_round_trip() {
        for k in OptimizerKind::all() {
            assert_eq!(OptimizerKind::from_wire_id(k.wire_id()), Some(k));
        }
        assert_eq!(OptimizerKind::from_wire_id(200), None);
    }

    #[test]
    fn adam_first_step_matches_closed_form() {
        // At step 1 with zero-initialized moments, Adam's update is exactly
        // -lr * sign(g) (up to eps), independent of |g|.
        let adam = Adam::default();
        let mut slots = [0.0f32; 2];
        let w1 = adam.update_scalar(0.0, &mut slots, 0.5, 1);
        let lr = adam.params.lr;
        assert!((w1 + lr).abs() < lr * 1e-3, "w1 = {w1}, expected ≈ {}", -lr);
        let mut slots = [0.0f32; 2];
        let w2 = adam.update_scalar(0.0, &mut slots, -3.0, 1);
        assert!((w2 - lr).abs() < lr * 1e-3);
    }

    #[test]
    fn adam_moments_accumulate() {
        let adam = Adam::default();
        let mut slots = [0.0f32; 2];
        let mut w = 1.0f32;
        for step in 1..=10 {
            w = adam.update_scalar(w, &mut slots, 1.0, step);
        }
        // Constant positive gradient: m → 1, v → 1, w decreases ~ lr/step.
        assert!(slots[0] > 0.6 && slots[0] <= 1.0);
        assert!(slots[1] > 0.0 && slots[1] <= 1.0);
        assert!(w < 1.0 - 9.0 * adam.params.lr * 0.9);
    }

    #[test]
    fn adamw_decays_weights_without_gradient() {
        let aw = AdamW::default();
        let mut slots = [0.0f32; 2];
        let w = aw.update_scalar(10.0, &mut slots, 0.0, 1);
        // Pure decay: w' = w (1 − lr·wd).
        let expect = 10.0 * (1.0 - aw.params.lr * aw.params.weight_decay);
        assert!((w - expect).abs() < 1e-6);
    }

    #[test]
    fn plain_adam_has_no_decay() {
        let a = Adam::default();
        let mut slots = [0.0f32; 2];
        let w = a.update_scalar(10.0, &mut slots, 0.0, 1);
        assert_eq!(w, 10.0);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let s = SgdMomentum::default();
        let mut slots = [0.0f32];
        let w0 = 0.0f32;
        let w1 = s.update_scalar(w0, &mut slots, 1.0, 1);
        let d1 = w0 - w1;
        let w2 = s.update_scalar(w1, &mut slots, 1.0, 2);
        let d2 = w1 - w2;
        assert!(d2 > d1, "momentum must grow the step: {d1} vs {d2}");
        assert!((slots[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn adagrad_steps_shrink() {
        let a = Adagrad::default();
        let mut slots = [0.0f32];
        let w0 = 0.0f32;
        let w1 = a.update_scalar(w0, &mut slots, 1.0, 1);
        let w2 = a.update_scalar(w1, &mut slots, 1.0, 2);
        assert!((w0 - w1) > (w1 - w2), "adagrad steps must shrink");
        assert_eq!(slots[0], 2.0);
    }

    #[test]
    fn updates_are_deterministic() {
        let adam = Adam::default();
        for _ in 0..3 {
            let mut s1 = [0.1f32, 0.2];
            let mut s2 = [0.1f32, 0.2];
            let a = adam.update_scalar(0.7, &mut s1, -0.3, 5);
            let b = adam.update_scalar(0.7, &mut s2, -0.3, 5);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(s1[0].to_bits(), s2[0].to_bits());
            assert_eq!(s1[1].to_bits(), s2[1].to_bits());
        }
    }

    #[test]
    fn lion_moves_by_lr_per_step() {
        let lion = Lion::default();
        let mut slots = [0.0f32];
        // Positive gradient: step is exactly -lr (plus decay on w=0: none).
        let w1 = lion.update_scalar(0.0, &mut slots, 0.5, 1);
        assert!((w1 + lion.params.lr).abs() < 1e-12);
        // Magnitude-independent: a huge gradient takes the same step.
        let mut slots = [0.0f32];
        let w2 = lion.update_scalar(0.0, &mut slots, 1e4, 1);
        assert_eq!(w1.to_bits(), w2.to_bits());
    }

    #[test]
    fn lion_momentum_accumulates_and_decays_weights() {
        let lion = Lion::default();
        let mut slots = [0.0f32];
        lion.update_scalar(0.0, &mut slots, 1.0, 1);
        assert!((slots[0] - 0.01).abs() < 1e-7, "m = {}", slots[0]);
        // Pure decay with zero grad and zero momentum.
        let mut slots = [0.0f32];
        let w = lion.update_scalar(100.0, &mut slots, 0.0, 1);
        let expect = 100.0 * (1.0 - lion.params.lr * lion.params.weight_decay);
        assert!((w - expect).abs() < 1e-4);
    }

    #[test]
    fn make_optimizer_constructs_each_kind() {
        for k in OptimizerKind::all() {
            let o = make_optimizer(k, AdamParams::default(), MomentumParams::default());
            assert_eq!(o.kind(), k);
            assert_eq!(o.state_slots(), k.state_slots());
        }
    }
}
