//! Blockwise 8-bit quantization of optimizer state.
//!
//! Adam's moments tolerate aggressive quantization (the insight behind
//! 8-bit optimizers): storing `m` and `v` as one byte each with a per-block
//! fp32 scale cuts the auxiliary state from 8 B to ~2 B per parameter. For
//! a *flash-resident* optimizer that is not (only) a capacity win — it is
//! array bandwidth and wear, the exact resources that bound the in-storage
//! step. The F22 experiment quantifies it.
//!
//! Scheme: **blockwise quartic codes**. A block of [`BLOCK`] values shares
//! one fp32 scale (the block's absmax); each value is stored as an 8-bit
//! code on a quartic map, `x ≈ scale · (c/c_max)⁴` (with sign for the first
//! moment). A *linear* map would be catastrophic here: Adam's second moment
//! spans many decades within a block, and any `v` that rounds to zero turns
//! the update into `m/ε`. The quartic map keeps ~5 % relative resolution
//! down to values 10⁴× below the block maximum — the same reason production
//! 8-bit optimizers use non-linear (dynamic) code maps.

use serde::{Deserialize, Serialize};

/// Values per quantization block (one fp32 scale per block).
pub const BLOCK: usize = 256;

/// Bytes per parameter for one quantized slot (code + amortized scale).
pub fn quantized_slot_bytes() -> f64 {
    1.0 + 4.0 / BLOCK as f64
}

/// A blockwise-quantized tensor: 8-bit quartic codes plus per-block scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    codes: Vec<u8>,
    scales: Vec<f32>,
    signed: bool,
}

/// Encodes `|x|/scale ∈ [0,1]` on the quartic map with `c_max` levels.
fn encode_mag(ratio: f32, c_max: f32) -> f32 {
    (ratio.max(0.0).powf(0.25) * c_max)
        .round()
        .clamp(0.0, c_max)
}

/// Decodes a magnitude code back to `[0,1]`.
fn decode_mag(code: f32, c_max: f32) -> f32 {
    let r = code / c_max;
    r * r * r * r
}

impl QuantizedTensor {
    /// Quantizes a signed tensor (first moments): sign + 7-bit quartic
    /// magnitude, blockwise absmax scale.
    pub fn quantize_signed(xs: &[f32]) -> Self {
        let mut codes = Vec::with_capacity(xs.len());
        let mut scales = Vec::with_capacity(xs.len().div_ceil(BLOCK));
        for block in xs.chunks(BLOCK) {
            let absmax = block.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let scale = if absmax > 0.0 { absmax } else { 1.0 };
            scales.push(scale);
            for &x in block {
                let mag = encode_mag(x.abs() / scale, 127.0) as i8;
                let q = if x < 0.0 { -mag } else { mag };
                codes.push(q as u8);
            }
        }
        QuantizedTensor {
            codes,
            scales,
            signed: true,
        }
    }

    /// Quantizes a non-negative tensor (second moments): 8-bit quartic
    /// magnitude, blockwise max scale.
    ///
    /// # Panics
    /// Panics (in debug builds) if any value is negative.
    pub fn quantize_unsigned(xs: &[f32]) -> Self {
        let mut codes = Vec::with_capacity(xs.len());
        let mut scales = Vec::with_capacity(xs.len().div_ceil(BLOCK));
        for block in xs.chunks(BLOCK) {
            debug_assert!(block.iter().all(|&x| x >= 0.0), "unsigned tensor");
            let max = block.iter().fold(0.0f32, |a, &x| a.max(x));
            let scale = if max > 0.0 { max } else { 1.0 };
            scales.push(scale);
            for &x in block {
                codes.push(encode_mag(x / scale, 255.0) as u8);
            }
        }
        QuantizedTensor {
            codes,
            scales,
            signed: false,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let scale = self.scales[i / BLOCK];
                if self.signed {
                    let q = c as i8;
                    let mag = decode_mag(q.unsigned_abs() as f32, 127.0) * scale;
                    if q < 0 {
                        -mag
                    } else {
                        mag
                    }
                } else {
                    decode_mag(c as f32, 255.0) * scale
                }
            })
            .collect()
    }

    /// Storage footprint in bytes (codes + scales).
    pub fn storage_bytes(&self) -> u64 {
        self.codes.len() as u64 + 4 * self.scales.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.13).sin() * 0.02).collect()
    }

    /// Quartic-map relative resolution at code `c` is ≈ 4/c, so values with
    /// a healthy code should round-trip within a few percent.
    fn assert_round_trip(xs: &[f32], ys: &[f32], c_max: f32, scale_of: impl Fn(usize) -> f32) {
        for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
            let scale = scale_of(i);
            let ratio = (x.abs() / scale).clamp(0.0, 1.0);
            let code = ratio.powf(0.25) * c_max;
            if code >= 1.0 {
                // Error of half a code step on the quartic map.
                let rel_tol = 2.5 / code.max(1.0) + 1e-4;
                let err = (x - y).abs();
                assert!(
                    err <= x.abs() * rel_tol + scale * 1e-9,
                    "element {i}: {x} vs {y} (code {code:.1}, rel tol {rel_tol:.3})"
                );
            } else {
                // Below the smallest code: must decode to (near) zero.
                assert!(y.abs() <= scale * (1.5f32 / c_max).powi(4));
            }
        }
    }

    #[test]
    fn signed_round_trip_is_accurate() {
        let xs = signal(1000);
        let q = QuantizedTensor::quantize_signed(&xs);
        let ys = q.dequantize();
        let absmax = xs.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert_round_trip(&xs, &ys, 127.0, |_| absmax);
        // Signs survive.
        for (&x, &y) in xs.iter().zip(&ys) {
            if x.abs() > absmax * 0.01 {
                assert_eq!(x.signum(), y.signum());
            }
        }
    }

    #[test]
    fn unsigned_round_trip_is_accurate() {
        let xs: Vec<f32> = signal(1000).iter().map(|x| x * x).collect();
        let q = QuantizedTensor::quantize_unsigned(&xs);
        let ys = q.dequantize();
        let max = xs.iter().fold(0.0f32, |a, &x| a.max(x));
        assert_round_trip(&xs, &ys, 255.0, |_| max);
    }

    #[test]
    fn tiny_values_stay_representable() {
        // The motivation for the quartic map: a value 10⁴× below the block
        // max must not collapse to zero (linear codes would lose it).
        let mut xs = vec![1.0f32; BLOCK];
        xs[0] = 1e-4;
        let q = QuantizedTensor::quantize_unsigned(&xs);
        let ys = q.dequantize();
        assert!(ys[0] > 0.0, "small value lost: {:?}", ys[0]);
        assert!((ys[0] - 1e-4).abs() / 1e-4 < 0.25, "got {}", ys[0]);
    }

    #[test]
    fn storage_is_about_one_byte_per_element() {
        let xs = signal(4096);
        let q = QuantizedTensor::quantize_signed(&xs);
        assert_eq!(q.storage_bytes(), 4096 + 4 * 16);
        assert!((quantized_slot_bytes() - 1.015625).abs() < 1e-12);
    }

    #[test]
    fn zero_blocks_survive() {
        let xs = vec![0.0f32; 600];
        let q = QuantizedTensor::quantize_signed(&xs);
        assert!(q.dequantize().iter().all(|&x| x == 0.0));
        let q = QuantizedTensor::quantize_unsigned(&xs);
        assert!(q.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn blocks_are_scaled_independently() {
        // A huge outlier in one block must not destroy precision elsewhere.
        let mut xs = signal(2 * BLOCK);
        xs[0] = 1000.0;
        let q = QuantizedTensor::quantize_signed(&xs);
        let ys = q.dequantize();
        let absmax2 = xs[BLOCK..].iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert_round_trip(&xs[BLOCK..], &ys[BLOCK..], 127.0, |_| absmax2);
    }

    #[test]
    fn quantized_adam_still_converges() {
        // Run Adam over a 512-element quadratic with the moment tensors
        // round-tripped through blockwise 8-bit storage every step — the
        // functional argument behind the F22 experiment. Blockwise scales
        // are shared across 256 elements, so the quantization error here is
        // the real thing.
        use crate::hyper::AdamParams;
        use crate::optimizer::{Adam, Optimizer};
        let adam = Adam::new(AdamParams {
            lr: 5e-3,
            ..AdamParams::default()
        });
        let n = 512usize;
        let targets: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin()).collect();
        let mut w = vec![0.0f32; n];
        let mut m = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        for step in 1..=1500u64 {
            for i in 0..n {
                let grad = w[i] - targets[i];
                let mut slots = [m[i], v[i]];
                w[i] = adam.update_scalar(w[i], &mut slots, grad, step);
                m[i] = slots[0];
                v[i] = slots[1];
            }
            m = QuantizedTensor::quantize_signed(&m).dequantize();
            v = QuantizedTensor::quantize_unsigned(&v).dequantize();
        }
        let mean_err: f32 = w
            .iter()
            .zip(&targets)
            .map(|(w, t)| (w - t).abs())
            .sum::<f32>()
            / n as f32;
        assert!(mean_err < 0.05, "mean |w - target| = {mean_err}");
    }
}
