/root/repo/target/debug/deps/fig16_grad_staging-61f8ba337568b7b2.d: crates/bench/src/bin/fig16_grad_staging.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_grad_staging-61f8ba337568b7b2.rmeta: crates/bench/src/bin/fig16_grad_staging.rs Cargo.toml

crates/bench/src/bin/fig16_grad_staging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
