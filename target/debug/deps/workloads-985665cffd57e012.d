/root/repo/target/debug/deps/workloads-985665cffd57e012.d: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-985665cffd57e012.rmeta: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/aging.rs:
crates/workloads/src/faults.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
