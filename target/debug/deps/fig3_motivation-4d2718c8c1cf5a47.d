/root/repo/target/debug/deps/fig3_motivation-4d2718c8c1cf5a47.d: crates/bench/src/bin/fig3_motivation.rs

/root/repo/target/debug/deps/fig3_motivation-4d2718c8c1cf5a47: crates/bench/src/bin/fig3_motivation.rs

crates/bench/src/bin/fig3_motivation.rs:
