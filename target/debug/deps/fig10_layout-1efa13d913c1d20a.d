/root/repo/target/debug/deps/fig10_layout-1efa13d913c1d20a.d: crates/bench/src/bin/fig10_layout.rs

/root/repo/target/debug/deps/fig10_layout-1efa13d913c1d20a: crates/bench/src/bin/fig10_layout.rs

crates/bench/src/bin/fig10_layout.rs:
