/root/repo/target/debug/deps/workloads-371552a55d257d25.d: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/libworkloads-371552a55d257d25.rlib: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/libworkloads-371552a55d257d25.rmeta: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/aging.rs:
crates/workloads/src/faults.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
