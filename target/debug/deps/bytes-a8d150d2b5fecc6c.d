/root/repo/target/debug/deps/bytes-a8d150d2b5fecc6c.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a8d150d2b5fecc6c.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a8d150d2b5fecc6c.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
