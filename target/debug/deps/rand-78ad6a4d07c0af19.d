/root/repo/target/debug/deps/rand-78ad6a4d07c0af19.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-78ad6a4d07c0af19: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
