/root/repo/target/debug/deps/baselines-b1329ada4658d33f.d: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

/root/repo/target/debug/deps/baselines-b1329ada4658d33f: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dram_offload.rs:
crates/baselines/src/host_nvme.rs:
