/root/repo/target/debug/deps/fig7_parallelism-bcce8337f08f2915.d: crates/bench/src/bin/fig7_parallelism.rs

/root/repo/target/debug/deps/fig7_parallelism-bcce8337f08f2915: crates/bench/src/bin/fig7_parallelism.rs

crates/bench/src/bin/fig7_parallelism.rs:
