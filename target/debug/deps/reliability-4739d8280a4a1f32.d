/root/repo/target/debug/deps/reliability-4739d8280a4a1f32.d: tests/reliability.rs Cargo.toml

/root/repo/target/debug/deps/libreliability-4739d8280a4a1f32.rmeta: tests/reliability.rs Cargo.toml

tests/reliability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
