/root/repo/target/debug/deps/fig5_speedup-84629624e1540307.d: crates/bench/src/bin/fig5_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_speedup-84629624e1540307.rmeta: crates/bench/src/bin/fig5_speedup.rs Cargo.toml

crates/bench/src/bin/fig5_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
