/root/repo/target/debug/deps/fig5_speedup-62a3d9d06bfbe95c.d: crates/bench/src/bin/fig5_speedup.rs

/root/repo/target/debug/deps/fig5_speedup-62a3d9d06bfbe95c: crates/bench/src/bin/fig5_speedup.rs

crates/bench/src/bin/fig5_speedup.rs:
