/root/repo/target/debug/deps/gc_endurance-32535f4f8295fcf6.d: tests/gc_endurance.rs

/root/repo/target/debug/deps/gc_endurance-32535f4f8295fcf6: tests/gc_endurance.rs

tests/gc_endurance.rs:
