/root/repo/target/debug/deps/optimstore_core-5690f15802ce85cb.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs Cargo.toml

/root/repo/target/debug/deps/liboptimstore_core-5690f15802ce85cb.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/layout.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/endurance.rs:
crates/core/src/energy.rs:
crates/core/src/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
