/root/repo/target/debug/deps/proptests-3e33d6f346dcc634.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-3e33d6f346dcc634: tests/proptests.rs

tests/proptests.rs:
