/root/repo/target/debug/deps/reliability-28d75487108de1a8.d: tests/reliability.rs

/root/repo/target/debug/deps/reliability-28d75487108de1a8: tests/reliability.rs

tests/reliability.rs:
