/root/repo/target/debug/deps/fig16_grad_staging-d7d6d88ec9d5b900.d: crates/bench/src/bin/fig16_grad_staging.rs

/root/repo/target/debug/deps/fig16_grad_staging-d7d6d88ec9d5b900: crates/bench/src/bin/fig16_grad_staging.rs

crates/bench/src/bin/fig16_grad_staging.rs:
