/root/repo/target/debug/deps/fault_recovery-24f9e9fd74801c79.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-24f9e9fd74801c79: tests/fault_recovery.rs

tests/fault_recovery.rs:
