/root/repo/target/debug/deps/gc_endurance-7e35919b19e1c17d.d: tests/gc_endurance.rs Cargo.toml

/root/repo/target/debug/deps/libgc_endurance-7e35919b19e1c17d.rmeta: tests/gc_endurance.rs Cargo.toml

tests/gc_endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
