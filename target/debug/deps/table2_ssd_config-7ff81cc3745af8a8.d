/root/repo/target/debug/deps/table2_ssd_config-7ff81cc3745af8a8.d: crates/bench/src/bin/table2_ssd_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_ssd_config-7ff81cc3745af8a8.rmeta: crates/bench/src/bin/table2_ssd_config.rs Cargo.toml

crates/bench/src/bin/table2_ssd_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
