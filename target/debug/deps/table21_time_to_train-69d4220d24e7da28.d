/root/repo/target/debug/deps/table21_time_to_train-69d4220d24e7da28.d: crates/bench/src/bin/table21_time_to_train.rs Cargo.toml

/root/repo/target/debug/deps/libtable21_time_to_train-69d4220d24e7da28.rmeta: crates/bench/src/bin/table21_time_to_train.rs Cargo.toml

crates/bench/src/bin/table21_time_to_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
