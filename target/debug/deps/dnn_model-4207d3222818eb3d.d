/root/repo/target/debug/deps/dnn_model-4207d3222818eb3d.d: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/dnn_model-4207d3222818eb3d: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/compute.rs:
crates/dnn/src/footprint.rs:
crates/dnn/src/partition.rs:
crates/dnn/src/schedule.rs:
crates/dnn/src/timeline.rs:
crates/dnn/src/zoo.rs:
