/root/repo/target/debug/deps/table14_correctness-03a50a1c50a601fb.d: crates/bench/src/bin/table14_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libtable14_correctness-03a50a1c50a601fb.rmeta: crates/bench/src/bin/table14_correctness.rs Cargo.toml

crates/bench/src/bin/table14_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
