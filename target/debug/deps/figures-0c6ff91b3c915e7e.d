/root/repo/target/debug/deps/figures-0c6ff91b3c915e7e.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-0c6ff91b3c915e7e.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
