/root/repo/target/debug/deps/fig4_step_latency-0b83ef33e0786a11.d: crates/bench/src/bin/fig4_step_latency.rs

/root/repo/target/debug/deps/fig4_step_latency-0b83ef33e0786a11: crates/bench/src/bin/fig4_step_latency.rs

crates/bench/src/bin/fig4_step_latency.rs:
