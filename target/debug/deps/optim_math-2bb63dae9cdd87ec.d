/root/repo/target/debug/deps/optim_math-2bb63dae9cdd87ec.d: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs Cargo.toml

/root/repo/target/debug/deps/liboptim_math-2bb63dae9cdd87ec.rmeta: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs Cargo.toml

crates/optim/src/lib.rs:
crates/optim/src/bf16.rs:
crates/optim/src/f16.rs:
crates/optim/src/hyper.rs:
crates/optim/src/optimizer.rs:
crates/optim/src/compress.rs:
crates/optim/src/kernels.rs:
crates/optim/src/norms.rs:
crates/optim/src/quant.rs:
crates/optim/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
