/root/repo/target/debug/deps/fig5_speedup-5a7c7eb0a5f8df28.d: crates/bench/src/bin/fig5_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_speedup-5a7c7eb0a5f8df28.rmeta: crates/bench/src/bin/fig5_speedup.rs Cargo.toml

crates/bench/src/bin/fig5_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
