/root/repo/target/debug/deps/optimstore-e632aa69fc686f11.d: src/lib.rs

/root/repo/target/debug/deps/optimstore-e632aa69fc686f11: src/lib.rs

src/lib.rs:
