/root/repo/target/debug/deps/optimstore-a3ca3f21075bf0e7.d: src/lib.rs

/root/repo/target/debug/deps/liboptimstore-a3ca3f21075bf0e7.rlib: src/lib.rs

/root/repo/target/debug/deps/liboptimstore-a3ca3f21075bf0e7.rmeta: src/lib.rs

src/lib.rs:
