/root/repo/target/debug/deps/ssdsim-0e54ebc9389eb969.d: crates/ssd/src/lib.rs crates/ssd/src/address.rs crates/ssd/src/channel.rs crates/ssd/src/config.rs crates/ssd/src/device.rs crates/ssd/src/error.rs crates/ssd/src/nvme.rs crates/ssd/src/stats.rs crates/ssd/src/ftl/mod.rs crates/ssd/src/ftl/allocator.rs crates/ssd/src/ftl/mapping.rs crates/ssd/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libssdsim-0e54ebc9389eb969.rmeta: crates/ssd/src/lib.rs crates/ssd/src/address.rs crates/ssd/src/channel.rs crates/ssd/src/config.rs crates/ssd/src/device.rs crates/ssd/src/error.rs crates/ssd/src/nvme.rs crates/ssd/src/stats.rs crates/ssd/src/ftl/mod.rs crates/ssd/src/ftl/allocator.rs crates/ssd/src/ftl/mapping.rs crates/ssd/src/trace.rs Cargo.toml

crates/ssd/src/lib.rs:
crates/ssd/src/address.rs:
crates/ssd/src/channel.rs:
crates/ssd/src/config.rs:
crates/ssd/src/device.rs:
crates/ssd/src/error.rs:
crates/ssd/src/nvme.rs:
crates/ssd/src/stats.rs:
crates/ssd/src/ftl/mod.rs:
crates/ssd/src/ftl/allocator.rs:
crates/ssd/src/ftl/mapping.rs:
crates/ssd/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
