/root/repo/target/debug/deps/fig26_reliability_sweep-b5ade7d4902e67c0.d: crates/bench/src/bin/fig26_reliability_sweep.rs

/root/repo/target/debug/deps/fig26_reliability_sweep-b5ade7d4902e67c0: crates/bench/src/bin/fig26_reliability_sweep.rs

crates/bench/src/bin/fig26_reliability_sweep.rs:
