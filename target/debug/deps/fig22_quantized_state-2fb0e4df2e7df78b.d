/root/repo/target/debug/deps/fig22_quantized_state-2fb0e4df2e7df78b.d: crates/bench/src/bin/fig22_quantized_state.rs

/root/repo/target/debug/deps/fig22_quantized_state-2fb0e4df2e7df78b: crates/bench/src/bin/fig22_quantized_state.rs

crates/bench/src/bin/fig22_quantized_state.rs:
