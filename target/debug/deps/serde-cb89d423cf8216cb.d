/root/repo/target/debug/deps/serde-cb89d423cf8216cb.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-cb89d423cf8216cb.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
