/root/repo/target/debug/deps/all_experiments-2e573c6f0b90ddbb.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-2e573c6f0b90ddbb.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
