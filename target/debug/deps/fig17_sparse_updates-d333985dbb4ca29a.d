/root/repo/target/debug/deps/fig17_sparse_updates-d333985dbb4ca29a.d: crates/bench/src/bin/fig17_sparse_updates.rs

/root/repo/target/debug/deps/fig17_sparse_updates-d333985dbb4ca29a: crates/bench/src/bin/fig17_sparse_updates.rs

crates/bench/src/bin/fig17_sparse_updates.rs:
