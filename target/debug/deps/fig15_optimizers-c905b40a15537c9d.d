/root/repo/target/debug/deps/fig15_optimizers-c905b40a15537c9d.d: crates/bench/src/bin/fig15_optimizers.rs

/root/repo/target/debug/deps/fig15_optimizers-c905b40a15537c9d: crates/bench/src/bin/fig15_optimizers.rs

crates/bench/src/bin/fig15_optimizers.rs:
