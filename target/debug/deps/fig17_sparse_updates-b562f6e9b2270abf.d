/root/repo/target/debug/deps/fig17_sparse_updates-b562f6e9b2270abf.d: crates/bench/src/bin/fig17_sparse_updates.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_sparse_updates-b562f6e9b2270abf.rmeta: crates/bench/src/bin/fig17_sparse_updates.rs Cargo.toml

crates/bench/src/bin/fig17_sparse_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
