/root/repo/target/debug/deps/fig16_grad_staging-5359f1538320bb9f.d: crates/bench/src/bin/fig16_grad_staging.rs

/root/repo/target/debug/deps/fig16_grad_staging-5359f1538320bb9f: crates/bench/src/bin/fig16_grad_staging.rs

crates/bench/src/bin/fig16_grad_staging.rs:
