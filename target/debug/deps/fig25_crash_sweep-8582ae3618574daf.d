/root/repo/target/debug/deps/fig25_crash_sweep-8582ae3618574daf.d: crates/bench/src/bin/fig25_crash_sweep.rs

/root/repo/target/debug/deps/fig25_crash_sweep-8582ae3618574daf: crates/bench/src/bin/fig25_crash_sweep.rs

crates/bench/src/bin/fig25_crash_sweep.rs:
