/root/repo/target/debug/deps/fig24_fault_sweep-0030558c85edd3e8.d: crates/bench/src/bin/fig24_fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig24_fault_sweep-0030558c85edd3e8.rmeta: crates/bench/src/bin/fig24_fault_sweep.rs Cargo.toml

crates/bench/src/bin/fig24_fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
