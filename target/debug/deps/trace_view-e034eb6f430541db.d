/root/repo/target/debug/deps/trace_view-e034eb6f430541db.d: crates/bench/src/bin/trace_view.rs

/root/repo/target/debug/deps/trace_view-e034eb6f430541db: crates/bench/src/bin/trace_view.rs

crates/bench/src/bin/trace_view.rs:
