/root/repo/target/debug/deps/fig23_scheduler_granularity-c96a46368e1afa6c.d: crates/bench/src/bin/fig23_scheduler_granularity.rs

/root/repo/target/debug/deps/fig23_scheduler_granularity-c96a46368e1afa6c: crates/bench/src/bin/fig23_scheduler_granularity.rs

crates/bench/src/bin/fig23_scheduler_granularity.rs:
