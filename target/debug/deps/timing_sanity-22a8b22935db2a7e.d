/root/repo/target/debug/deps/timing_sanity-22a8b22935db2a7e.d: tests/timing_sanity.rs

/root/repo/target/debug/deps/timing_sanity-22a8b22935db2a7e: tests/timing_sanity.rs

tests/timing_sanity.rs:
