/root/repo/target/debug/deps/fig18_aging-628c77db38bf490c.d: crates/bench/src/bin/fig18_aging.rs

/root/repo/target/debug/deps/fig18_aging-628c77db38bf490c: crates/bench/src/bin/fig18_aging.rs

crates/bench/src/bin/fig18_aging.rs:
