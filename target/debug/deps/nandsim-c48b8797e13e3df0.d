/root/repo/target/debug/deps/nandsim-c48b8797e13e3df0.d: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

/root/repo/target/debug/deps/nandsim-c48b8797e13e3df0: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

crates/nand/src/lib.rs:
crates/nand/src/bus.rs:
crates/nand/src/die.rs:
crates/nand/src/error.rs:
crates/nand/src/geometry.rs:
crates/nand/src/timing.rs:
crates/nand/src/fault.rs:
crates/nand/src/power.rs:
crates/nand/src/store.rs:
crates/nand/src/wear.rs:
