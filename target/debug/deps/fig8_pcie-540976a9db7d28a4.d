/root/repo/target/debug/deps/fig8_pcie-540976a9db7d28a4.d: crates/bench/src/bin/fig8_pcie.rs

/root/repo/target/debug/deps/fig8_pcie-540976a9db7d28a4: crates/bench/src/bin/fig8_pcie.rs

crates/bench/src/bin/fig8_pcie.rs:
