/root/repo/target/debug/deps/fig9_energy-fed9aaf7f2c4f67d.d: crates/bench/src/bin/fig9_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_energy-fed9aaf7f2c4f67d.rmeta: crates/bench/src/bin/fig9_energy.rs Cargo.toml

crates/bench/src/bin/fig9_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
