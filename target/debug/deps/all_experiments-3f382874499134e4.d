/root/repo/target/debug/deps/all_experiments-3f382874499134e4.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-3f382874499134e4: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
