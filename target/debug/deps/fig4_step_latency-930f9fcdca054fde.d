/root/repo/target/debug/deps/fig4_step_latency-930f9fcdca054fde.d: crates/bench/src/bin/fig4_step_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_step_latency-930f9fcdca054fde.rmeta: crates/bench/src/bin/fig4_step_latency.rs Cargo.toml

crates/bench/src/bin/fig4_step_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
