/root/repo/target/debug/deps/optimstore-aa61f52168ded9cf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboptimstore-aa61f52168ded9cf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
