/root/repo/target/debug/deps/fig18_aging-8bd7f657a62c8a56.d: crates/bench/src/bin/fig18_aging.rs

/root/repo/target/debug/deps/fig18_aging-8bd7f657a62c8a56: crates/bench/src/bin/fig18_aging.rs

crates/bench/src/bin/fig18_aging.rs:
