/root/repo/target/debug/deps/timing_sanity-7af1a9123b306799.d: tests/timing_sanity.rs

/root/repo/target/debug/deps/timing_sanity-7af1a9123b306799: tests/timing_sanity.rs

tests/timing_sanity.rs:
