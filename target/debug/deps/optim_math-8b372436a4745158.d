/root/repo/target/debug/deps/optim_math-8b372436a4745158.d: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

/root/repo/target/debug/deps/liboptim_math-8b372436a4745158.rlib: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

/root/repo/target/debug/deps/liboptim_math-8b372436a4745158.rmeta: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

crates/optim/src/lib.rs:
crates/optim/src/bf16.rs:
crates/optim/src/f16.rs:
crates/optim/src/hyper.rs:
crates/optim/src/optimizer.rs:
crates/optim/src/compress.rs:
crates/optim/src/kernels.rs:
crates/optim/src/norms.rs:
crates/optim/src/quant.rs:
crates/optim/src/state.rs:
