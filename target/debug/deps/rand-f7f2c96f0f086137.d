/root/repo/target/debug/deps/rand-f7f2c96f0f086137.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f7f2c96f0f086137.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f7f2c96f0f086137.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
