/root/repo/target/debug/deps/table1_models-b9f7cdf2cacc4310.d: crates/bench/src/bin/table1_models.rs

/root/repo/target/debug/deps/table1_models-b9f7cdf2cacc4310: crates/bench/src/bin/table1_models.rs

crates/bench/src/bin/table1_models.rs:
