/root/repo/target/debug/deps/fig7_parallelism-72b99edbeb011928.d: crates/bench/src/bin/fig7_parallelism.rs

/root/repo/target/debug/deps/fig7_parallelism-72b99edbeb011928: crates/bench/src/bin/fig7_parallelism.rs

crates/bench/src/bin/fig7_parallelism.rs:
