/root/repo/target/debug/deps/fig9_energy-8fa400a2c0d58e67.d: crates/bench/src/bin/fig9_energy.rs

/root/repo/target/debug/deps/fig9_energy-8fa400a2c0d58e67: crates/bench/src/bin/fig9_energy.rs

crates/bench/src/bin/fig9_energy.rs:
