/root/repo/target/debug/deps/simkit-92b5a777f413ab42.d: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsimkit-92b5a777f413ab42.rmeta: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/time.rs:
crates/simkit/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
