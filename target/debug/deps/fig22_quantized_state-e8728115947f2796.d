/root/repo/target/debug/deps/fig22_quantized_state-e8728115947f2796.d: crates/bench/src/bin/fig22_quantized_state.rs Cargo.toml

/root/repo/target/debug/deps/libfig22_quantized_state-e8728115947f2796.rmeta: crates/bench/src/bin/fig22_quantized_state.rs Cargo.toml

crates/bench/src/bin/fig22_quantized_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
