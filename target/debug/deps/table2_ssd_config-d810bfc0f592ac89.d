/root/repo/target/debug/deps/table2_ssd_config-d810bfc0f592ac89.d: crates/bench/src/bin/table2_ssd_config.rs

/root/repo/target/debug/deps/table2_ssd_config-d810bfc0f592ac89: crates/bench/src/bin/table2_ssd_config.rs

crates/bench/src/bin/table2_ssd_config.rs:
