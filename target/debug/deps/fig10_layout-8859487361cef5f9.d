/root/repo/target/debug/deps/fig10_layout-8859487361cef5f9.d: crates/bench/src/bin/fig10_layout.rs

/root/repo/target/debug/deps/fig10_layout-8859487361cef5f9: crates/bench/src/bin/fig10_layout.rs

crates/bench/src/bin/fig10_layout.rs:
