/root/repo/target/debug/deps/fault_recovery-ff12f81e84bc92f3.d: tests/fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfault_recovery-ff12f81e84bc92f3.rmeta: tests/fault_recovery.rs Cargo.toml

tests/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
