/root/repo/target/debug/deps/table14_correctness-9e2d6a2d5a0b82ce.d: crates/bench/src/bin/table14_correctness.rs

/root/repo/target/debug/deps/table14_correctness-9e2d6a2d5a0b82ce: crates/bench/src/bin/table14_correctness.rs

crates/bench/src/bin/table14_correctness.rs:
