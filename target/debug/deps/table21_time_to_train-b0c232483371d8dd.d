/root/repo/target/debug/deps/table21_time_to_train-b0c232483371d8dd.d: crates/bench/src/bin/table21_time_to_train.rs

/root/repo/target/debug/deps/table21_time_to_train-b0c232483371d8dd: crates/bench/src/bin/table21_time_to_train.rs

crates/bench/src/bin/table21_time_to_train.rs:
