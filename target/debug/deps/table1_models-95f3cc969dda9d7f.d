/root/repo/target/debug/deps/table1_models-95f3cc969dda9d7f.d: crates/bench/src/bin/table1_models.rs

/root/repo/target/debug/deps/table1_models-95f3cc969dda9d7f: crates/bench/src/bin/table1_models.rs

crates/bench/src/bin/table1_models.rs:
