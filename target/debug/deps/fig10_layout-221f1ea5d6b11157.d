/root/repo/target/debug/deps/fig10_layout-221f1ea5d6b11157.d: crates/bench/src/bin/fig10_layout.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_layout-221f1ea5d6b11157.rmeta: crates/bench/src/bin/fig10_layout.rs Cargo.toml

crates/bench/src/bin/fig10_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
