/root/repo/target/debug/deps/fig24_fault_sweep-dfb2da2e37b1ec46.d: crates/bench/src/bin/fig24_fault_sweep.rs

/root/repo/target/debug/deps/fig24_fault_sweep-dfb2da2e37b1ec46: crates/bench/src/bin/fig24_fault_sweep.rs

crates/bench/src/bin/fig24_fault_sweep.rs:
