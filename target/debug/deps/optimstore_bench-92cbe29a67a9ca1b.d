/root/repo/target/debug/deps/optimstore_bench-92cbe29a67a9ca1b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboptimstore_bench-92cbe29a67a9ca1b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboptimstore_bench-92cbe29a67a9ca1b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
