/root/repo/target/debug/deps/proptests-adad03d6b9b6f17e.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-adad03d6b9b6f17e: tests/proptests.rs

tests/proptests.rs:
