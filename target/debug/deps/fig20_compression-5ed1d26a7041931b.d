/root/repo/target/debug/deps/fig20_compression-5ed1d26a7041931b.d: crates/bench/src/bin/fig20_compression.rs

/root/repo/target/debug/deps/fig20_compression-5ed1d26a7041931b: crates/bench/src/bin/fig20_compression.rs

crates/bench/src/bin/fig20_compression.rs:
