/root/repo/target/debug/deps/convergence-2dce372429217066.d: tests/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-2dce372429217066.rmeta: tests/convergence.rs Cargo.toml

tests/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
