/root/repo/target/debug/deps/gc_endurance-cd24e6190ab8e4c7.d: tests/gc_endurance.rs

/root/repo/target/debug/deps/gc_endurance-cd24e6190ab8e4c7: tests/gc_endurance.rs

tests/gc_endurance.rs:
