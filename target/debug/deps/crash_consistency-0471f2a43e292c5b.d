/root/repo/target/debug/deps/crash_consistency-0471f2a43e292c5b.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-0471f2a43e292c5b: tests/crash_consistency.rs

tests/crash_consistency.rs:
