/root/repo/target/debug/deps/fig13_scaling-17d4ac04c742d90b.d: crates/bench/src/bin/fig13_scaling.rs

/root/repo/target/debug/deps/fig13_scaling-17d4ac04c742d90b: crates/bench/src/bin/fig13_scaling.rs

crates/bench/src/bin/fig13_scaling.rs:
