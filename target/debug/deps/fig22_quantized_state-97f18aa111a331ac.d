/root/repo/target/debug/deps/fig22_quantized_state-97f18aa111a331ac.d: crates/bench/src/bin/fig22_quantized_state.rs Cargo.toml

/root/repo/target/debug/deps/libfig22_quantized_state-97f18aa111a331ac.rmeta: crates/bench/src/bin/fig22_quantized_state.rs Cargo.toml

crates/bench/src/bin/fig22_quantized_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
