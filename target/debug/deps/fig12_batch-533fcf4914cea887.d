/root/repo/target/debug/deps/fig12_batch-533fcf4914cea887.d: crates/bench/src/bin/fig12_batch.rs

/root/repo/target/debug/deps/fig12_batch-533fcf4914cea887: crates/bench/src/bin/fig12_batch.rs

crates/bench/src/bin/fig12_batch.rs:
