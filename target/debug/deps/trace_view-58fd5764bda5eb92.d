/root/repo/target/debug/deps/trace_view-58fd5764bda5eb92.d: crates/bench/src/bin/trace_view.rs

/root/repo/target/debug/deps/trace_view-58fd5764bda5eb92: crates/bench/src/bin/trace_view.rs

crates/bench/src/bin/trace_view.rs:
