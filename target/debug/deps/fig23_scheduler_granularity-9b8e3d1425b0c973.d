/root/repo/target/debug/deps/fig23_scheduler_granularity-9b8e3d1425b0c973.d: crates/bench/src/bin/fig23_scheduler_granularity.rs Cargo.toml

/root/repo/target/debug/deps/libfig23_scheduler_granularity-9b8e3d1425b0c973.rmeta: crates/bench/src/bin/fig23_scheduler_granularity.rs Cargo.toml

crates/bench/src/bin/fig23_scheduler_granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
