/root/repo/target/debug/deps/fig15_optimizers-511ee3f91775317b.d: crates/bench/src/bin/fig15_optimizers.rs

/root/repo/target/debug/deps/fig15_optimizers-511ee3f91775317b: crates/bench/src/bin/fig15_optimizers.rs

crates/bench/src/bin/fig15_optimizers.rs:
