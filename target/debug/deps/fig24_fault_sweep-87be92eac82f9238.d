/root/repo/target/debug/deps/fig24_fault_sweep-87be92eac82f9238.d: crates/bench/src/bin/fig24_fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig24_fault_sweep-87be92eac82f9238.rmeta: crates/bench/src/bin/fig24_fault_sweep.rs Cargo.toml

crates/bench/src/bin/fig24_fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
