/root/repo/target/debug/deps/fig9_energy-658090bc97528666.d: crates/bench/src/bin/fig9_energy.rs

/root/repo/target/debug/deps/fig9_energy-658090bc97528666: crates/bench/src/bin/fig9_energy.rs

crates/bench/src/bin/fig9_energy.rs:
