/root/repo/target/debug/deps/fig13_scaling-add630e93de0c2c8.d: crates/bench/src/bin/fig13_scaling.rs

/root/repo/target/debug/deps/fig13_scaling-add630e93de0c2c8: crates/bench/src/bin/fig13_scaling.rs

crates/bench/src/bin/fig13_scaling.rs:
