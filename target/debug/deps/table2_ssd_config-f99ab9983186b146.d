/root/repo/target/debug/deps/table2_ssd_config-f99ab9983186b146.d: crates/bench/src/bin/table2_ssd_config.rs

/root/repo/target/debug/deps/table2_ssd_config-f99ab9983186b146: crates/bench/src/bin/table2_ssd_config.rs

crates/bench/src/bin/table2_ssd_config.rs:
