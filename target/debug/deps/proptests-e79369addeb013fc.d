/root/repo/target/debug/deps/proptests-e79369addeb013fc.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e79369addeb013fc.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
