/root/repo/target/debug/deps/convergence-b11dd123e605beea.d: tests/convergence.rs

/root/repo/target/debug/deps/convergence-b11dd123e605beea: tests/convergence.rs

tests/convergence.rs:
