/root/repo/target/debug/deps/optimstore_bench-49637bc7e66707f3.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/optimstore_bench-49637bc7e66707f3: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
