/root/repo/target/debug/deps/table1_models-b3b2843149d4a69a.d: crates/bench/src/bin/table1_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_models-b3b2843149d4a69a.rmeta: crates/bench/src/bin/table1_models.rs Cargo.toml

crates/bench/src/bin/table1_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
