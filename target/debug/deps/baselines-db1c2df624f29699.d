/root/repo/target/debug/deps/baselines-db1c2df624f29699.d: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

/root/repo/target/debug/deps/libbaselines-db1c2df624f29699.rlib: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

/root/repo/target/debug/deps/libbaselines-db1c2df624f29699.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dram_offload.rs:
crates/baselines/src/host_nvme.rs:
