/root/repo/target/debug/deps/optimstore-388a6dec484f77a0.d: src/lib.rs

/root/repo/target/debug/deps/optimstore-388a6dec484f77a0: src/lib.rs

src/lib.rs:
