/root/repo/target/debug/deps/fig12_batch-111c491fb70d5071.d: crates/bench/src/bin/fig12_batch.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_batch-111c491fb70d5071.rmeta: crates/bench/src/bin/fig12_batch.rs Cargo.toml

crates/bench/src/bin/fig12_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
