/root/repo/target/debug/deps/fig15_optimizers-02ebbd3462ad3caf.d: crates/bench/src/bin/fig15_optimizers.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_optimizers-02ebbd3462ad3caf.rmeta: crates/bench/src/bin/fig15_optimizers.rs Cargo.toml

crates/bench/src/bin/fig15_optimizers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
