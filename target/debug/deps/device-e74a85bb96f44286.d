/root/repo/target/debug/deps/device-e74a85bb96f44286.d: crates/bench/benches/device.rs Cargo.toml

/root/repo/target/debug/deps/libdevice-e74a85bb96f44286.rmeta: crates/bench/benches/device.rs Cargo.toml

crates/bench/benches/device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
