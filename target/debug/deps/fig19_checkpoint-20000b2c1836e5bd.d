/root/repo/target/debug/deps/fig19_checkpoint-20000b2c1836e5bd.d: crates/bench/src/bin/fig19_checkpoint.rs

/root/repo/target/debug/deps/fig19_checkpoint-20000b2c1836e5bd: crates/bench/src/bin/fig19_checkpoint.rs

crates/bench/src/bin/fig19_checkpoint.rs:
