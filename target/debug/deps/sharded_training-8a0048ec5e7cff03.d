/root/repo/target/debug/deps/sharded_training-8a0048ec5e7cff03.d: tests/sharded_training.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_training-8a0048ec5e7cff03.rmeta: tests/sharded_training.rs Cargo.toml

tests/sharded_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
