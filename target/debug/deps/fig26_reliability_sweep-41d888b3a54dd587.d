/root/repo/target/debug/deps/fig26_reliability_sweep-41d888b3a54dd587.d: crates/bench/src/bin/fig26_reliability_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig26_reliability_sweep-41d888b3a54dd587.rmeta: crates/bench/src/bin/fig26_reliability_sweep.rs Cargo.toml

crates/bench/src/bin/fig26_reliability_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
