/root/repo/target/debug/deps/bytes-a8324ac98f95a7c2.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-a8324ac98f95a7c2.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
