/root/repo/target/debug/deps/fig7_parallelism-016a8910a26322d6.d: crates/bench/src/bin/fig7_parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_parallelism-016a8910a26322d6.rmeta: crates/bench/src/bin/fig7_parallelism.rs Cargo.toml

crates/bench/src/bin/fig7_parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
