/root/repo/target/debug/deps/timing_sanity-efa5f773a5aa0e23.d: tests/timing_sanity.rs Cargo.toml

/root/repo/target/debug/deps/libtiming_sanity-efa5f773a5aa0e23.rmeta: tests/timing_sanity.rs Cargo.toml

tests/timing_sanity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
