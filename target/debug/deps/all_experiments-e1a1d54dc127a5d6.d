/root/repo/target/debug/deps/all_experiments-e1a1d54dc127a5d6.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-e1a1d54dc127a5d6: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
