/root/repo/target/debug/deps/workloads-8f1e05911f3ee269.d: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/workloads-8f1e05911f3ee269: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/aging.rs:
crates/workloads/src/faults.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
