/root/repo/target/debug/deps/functional_equivalence-acc482cac9a25714.d: tests/functional_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_equivalence-acc482cac9a25714.rmeta: tests/functional_equivalence.rs Cargo.toml

tests/functional_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
