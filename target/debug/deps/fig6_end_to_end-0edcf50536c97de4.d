/root/repo/target/debug/deps/fig6_end_to_end-0edcf50536c97de4.d: crates/bench/src/bin/fig6_end_to_end.rs

/root/repo/target/debug/deps/fig6_end_to_end-0edcf50536c97de4: crates/bench/src/bin/fig6_end_to_end.rs

crates/bench/src/bin/fig6_end_to_end.rs:
