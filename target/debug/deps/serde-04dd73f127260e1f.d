/root/repo/target/debug/deps/serde-04dd73f127260e1f.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-04dd73f127260e1f.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
