/root/repo/target/debug/deps/fig3_motivation-b2733176c0f9a463.d: crates/bench/src/bin/fig3_motivation.rs

/root/repo/target/debug/deps/fig3_motivation-b2733176c0f9a463: crates/bench/src/bin/fig3_motivation.rs

crates/bench/src/bin/fig3_motivation.rs:
