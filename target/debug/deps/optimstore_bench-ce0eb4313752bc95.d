/root/repo/target/debug/deps/optimstore_bench-ce0eb4313752bc95.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboptimstore_bench-ce0eb4313752bc95.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboptimstore_bench-ce0eb4313752bc95.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
