/root/repo/target/debug/deps/fig15_optimizers-2fbac743860673b2.d: crates/bench/src/bin/fig15_optimizers.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_optimizers-2fbac743860673b2.rmeta: crates/bench/src/bin/fig15_optimizers.rs Cargo.toml

crates/bench/src/bin/fig15_optimizers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
