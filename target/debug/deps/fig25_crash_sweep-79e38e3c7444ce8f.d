/root/repo/target/debug/deps/fig25_crash_sweep-79e38e3c7444ce8f.d: crates/bench/src/bin/fig25_crash_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig25_crash_sweep-79e38e3c7444ce8f.rmeta: crates/bench/src/bin/fig25_crash_sweep.rs Cargo.toml

crates/bench/src/bin/fig25_crash_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
