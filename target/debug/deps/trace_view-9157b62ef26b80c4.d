/root/repo/target/debug/deps/trace_view-9157b62ef26b80c4.d: crates/bench/src/bin/trace_view.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_view-9157b62ef26b80c4.rmeta: crates/bench/src/bin/trace_view.rs Cargo.toml

crates/bench/src/bin/trace_view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
