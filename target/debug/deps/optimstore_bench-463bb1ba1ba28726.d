/root/repo/target/debug/deps/optimstore_bench-463bb1ba1ba28726.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/liboptimstore_bench-463bb1ba1ba28726.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
