/root/repo/target/debug/deps/table14_correctness-6ae8d5c9a45c6d72.d: crates/bench/src/bin/table14_correctness.rs

/root/repo/target/debug/deps/table14_correctness-6ae8d5c9a45c6d72: crates/bench/src/bin/table14_correctness.rs

crates/bench/src/bin/table14_correctness.rs:
