/root/repo/target/debug/deps/optimstore-5eea4e923a08bc05.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboptimstore-5eea4e923a08bc05.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
