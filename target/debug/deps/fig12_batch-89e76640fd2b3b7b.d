/root/repo/target/debug/deps/fig12_batch-89e76640fd2b3b7b.d: crates/bench/src/bin/fig12_batch.rs

/root/repo/target/debug/deps/fig12_batch-89e76640fd2b3b7b: crates/bench/src/bin/fig12_batch.rs

crates/bench/src/bin/fig12_batch.rs:
