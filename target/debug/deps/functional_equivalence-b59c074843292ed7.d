/root/repo/target/debug/deps/functional_equivalence-b59c074843292ed7.d: tests/functional_equivalence.rs

/root/repo/target/debug/deps/functional_equivalence-b59c074843292ed7: tests/functional_equivalence.rs

tests/functional_equivalence.rs:
