/root/repo/target/debug/deps/fig6_end_to_end-7f6e89e990584fed.d: crates/bench/src/bin/fig6_end_to_end.rs

/root/repo/target/debug/deps/fig6_end_to_end-7f6e89e990584fed: crates/bench/src/bin/fig6_end_to_end.rs

crates/bench/src/bin/fig6_end_to_end.rs:
