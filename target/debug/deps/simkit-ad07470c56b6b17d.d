/root/repo/target/debug/deps/simkit-ad07470c56b6b17d.d: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/simkit-ad07470c56b6b17d: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/time.rs:
crates/simkit/src/stats.rs:
