/root/repo/target/debug/deps/fig17_sparse_updates-c9805d014f806645.d: crates/bench/src/bin/fig17_sparse_updates.rs

/root/repo/target/debug/deps/fig17_sparse_updates-c9805d014f806645: crates/bench/src/bin/fig17_sparse_updates.rs

crates/bench/src/bin/fig17_sparse_updates.rs:
