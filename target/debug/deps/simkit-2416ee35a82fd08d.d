/root/repo/target/debug/deps/simkit-2416ee35a82fd08d.d: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-2416ee35a82fd08d.rlib: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-2416ee35a82fd08d.rmeta: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/time.rs:
crates/simkit/src/stats.rs:
