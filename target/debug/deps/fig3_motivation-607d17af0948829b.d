/root/repo/target/debug/deps/fig3_motivation-607d17af0948829b.d: crates/bench/src/bin/fig3_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_motivation-607d17af0948829b.rmeta: crates/bench/src/bin/fig3_motivation.rs Cargo.toml

crates/bench/src/bin/fig3_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
