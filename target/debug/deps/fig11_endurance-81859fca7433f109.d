/root/repo/target/debug/deps/fig11_endurance-81859fca7433f109.d: crates/bench/src/bin/fig11_endurance.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_endurance-81859fca7433f109.rmeta: crates/bench/src/bin/fig11_endurance.rs Cargo.toml

crates/bench/src/bin/fig11_endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
