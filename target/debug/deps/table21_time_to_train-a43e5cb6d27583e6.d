/root/repo/target/debug/deps/table21_time_to_train-a43e5cb6d27583e6.d: crates/bench/src/bin/table21_time_to_train.rs

/root/repo/target/debug/deps/table21_time_to_train-a43e5cb6d27583e6: crates/bench/src/bin/table21_time_to_train.rs

crates/bench/src/bin/table21_time_to_train.rs:
