/root/repo/target/debug/deps/fig8_pcie-930f494a59fcf5d7.d: crates/bench/src/bin/fig8_pcie.rs

/root/repo/target/debug/deps/fig8_pcie-930f494a59fcf5d7: crates/bench/src/bin/fig8_pcie.rs

crates/bench/src/bin/fig8_pcie.rs:
