/root/repo/target/debug/deps/fig11_endurance-918aa521a326363f.d: crates/bench/src/bin/fig11_endurance.rs

/root/repo/target/debug/deps/fig11_endurance-918aa521a326363f: crates/bench/src/bin/fig11_endurance.rs

crates/bench/src/bin/fig11_endurance.rs:
