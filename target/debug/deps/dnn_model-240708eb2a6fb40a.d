/root/repo/target/debug/deps/dnn_model-240708eb2a6fb40a.d: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libdnn_model-240708eb2a6fb40a.rmeta: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs Cargo.toml

crates/dnn/src/lib.rs:
crates/dnn/src/compute.rs:
crates/dnn/src/footprint.rs:
crates/dnn/src/partition.rs:
crates/dnn/src/schedule.rs:
crates/dnn/src/timeline.rs:
crates/dnn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
