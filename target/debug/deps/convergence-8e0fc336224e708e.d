/root/repo/target/debug/deps/convergence-8e0fc336224e708e.d: tests/convergence.rs

/root/repo/target/debug/deps/convergence-8e0fc336224e708e: tests/convergence.rs

tests/convergence.rs:
