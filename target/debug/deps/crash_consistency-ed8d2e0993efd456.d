/root/repo/target/debug/deps/crash_consistency-ed8d2e0993efd456.d: tests/crash_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_consistency-ed8d2e0993efd456.rmeta: tests/crash_consistency.rs Cargo.toml

tests/crash_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
