/root/repo/target/debug/deps/fig19_checkpoint-a31c71f599c088f9.d: crates/bench/src/bin/fig19_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_checkpoint-a31c71f599c088f9.rmeta: crates/bench/src/bin/fig19_checkpoint.rs Cargo.toml

crates/bench/src/bin/fig19_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
