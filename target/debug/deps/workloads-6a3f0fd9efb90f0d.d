/root/repo/target/debug/deps/workloads-6a3f0fd9efb90f0d.d: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/libworkloads-6a3f0fd9efb90f0d.rlib: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/libworkloads-6a3f0fd9efb90f0d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
