/root/repo/target/debug/deps/sharded_training-bab93a83e902d862.d: tests/sharded_training.rs

/root/repo/target/debug/deps/sharded_training-bab93a83e902d862: tests/sharded_training.rs

tests/sharded_training.rs:
