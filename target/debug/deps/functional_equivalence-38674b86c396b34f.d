/root/repo/target/debug/deps/functional_equivalence-38674b86c396b34f.d: tests/functional_equivalence.rs

/root/repo/target/debug/deps/functional_equivalence-38674b86c396b34f: tests/functional_equivalence.rs

tests/functional_equivalence.rs:
