/root/repo/target/debug/deps/fig18_aging-086dd32c216f19b1.d: crates/bench/src/bin/fig18_aging.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_aging-086dd32c216f19b1.rmeta: crates/bench/src/bin/fig18_aging.rs Cargo.toml

crates/bench/src/bin/fig18_aging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
