/root/repo/target/debug/deps/sharded_training-19780959c97851fd.d: tests/sharded_training.rs

/root/repo/target/debug/deps/sharded_training-19780959c97851fd: tests/sharded_training.rs

tests/sharded_training.rs:
