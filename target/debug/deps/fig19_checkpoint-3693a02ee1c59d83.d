/root/repo/target/debug/deps/fig19_checkpoint-3693a02ee1c59d83.d: crates/bench/src/bin/fig19_checkpoint.rs

/root/repo/target/debug/deps/fig19_checkpoint-3693a02ee1c59d83: crates/bench/src/bin/fig19_checkpoint.rs

crates/bench/src/bin/fig19_checkpoint.rs:
