/root/repo/target/debug/deps/fig11_endurance-3d6b6955112b36c6.d: crates/bench/src/bin/fig11_endurance.rs

/root/repo/target/debug/deps/fig11_endurance-3d6b6955112b36c6: crates/bench/src/bin/fig11_endurance.rs

crates/bench/src/bin/fig11_endurance.rs:
