/root/repo/target/debug/deps/fig20_compression-162a26826f7b7427.d: crates/bench/src/bin/fig20_compression.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_compression-162a26826f7b7427.rmeta: crates/bench/src/bin/fig20_compression.rs Cargo.toml

crates/bench/src/bin/fig20_compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
