/root/repo/target/debug/deps/table21_time_to_train-92c04c6ad16d5b0c.d: crates/bench/src/bin/table21_time_to_train.rs Cargo.toml

/root/repo/target/debug/deps/libtable21_time_to_train-92c04c6ad16d5b0c.rmeta: crates/bench/src/bin/table21_time_to_train.rs Cargo.toml

crates/bench/src/bin/table21_time_to_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
