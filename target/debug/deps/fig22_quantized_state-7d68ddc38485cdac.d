/root/repo/target/debug/deps/fig22_quantized_state-7d68ddc38485cdac.d: crates/bench/src/bin/fig22_quantized_state.rs

/root/repo/target/debug/deps/fig22_quantized_state-7d68ddc38485cdac: crates/bench/src/bin/fig22_quantized_state.rs

crates/bench/src/bin/fig22_quantized_state.rs:
