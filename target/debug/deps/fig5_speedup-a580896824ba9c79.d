/root/repo/target/debug/deps/fig5_speedup-a580896824ba9c79.d: crates/bench/src/bin/fig5_speedup.rs

/root/repo/target/debug/deps/fig5_speedup-a580896824ba9c79: crates/bench/src/bin/fig5_speedup.rs

crates/bench/src/bin/fig5_speedup.rs:
