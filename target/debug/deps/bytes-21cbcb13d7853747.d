/root/repo/target/debug/deps/bytes-21cbcb13d7853747.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-21cbcb13d7853747: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
