/root/repo/target/debug/deps/table2_ssd_config-9b3e0fd700de1c5c.d: crates/bench/src/bin/table2_ssd_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_ssd_config-9b3e0fd700de1c5c.rmeta: crates/bench/src/bin/table2_ssd_config.rs Cargo.toml

crates/bench/src/bin/table2_ssd_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
