/root/repo/target/debug/deps/nandsim-8c91805406287f5c.d: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libnandsim-8c91805406287f5c.rmeta: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs Cargo.toml

crates/nand/src/lib.rs:
crates/nand/src/bus.rs:
crates/nand/src/die.rs:
crates/nand/src/error.rs:
crates/nand/src/geometry.rs:
crates/nand/src/timing.rs:
crates/nand/src/fault.rs:
crates/nand/src/power.rs:
crates/nand/src/store.rs:
crates/nand/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
