/root/repo/target/debug/deps/fig13_scaling-e49926703b20f272.d: crates/bench/src/bin/fig13_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_scaling-e49926703b20f272.rmeta: crates/bench/src/bin/fig13_scaling.rs Cargo.toml

crates/bench/src/bin/fig13_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
