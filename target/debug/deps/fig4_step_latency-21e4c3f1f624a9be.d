/root/repo/target/debug/deps/fig4_step_latency-21e4c3f1f624a9be.d: crates/bench/src/bin/fig4_step_latency.rs

/root/repo/target/debug/deps/fig4_step_latency-21e4c3f1f624a9be: crates/bench/src/bin/fig4_step_latency.rs

crates/bench/src/bin/fig4_step_latency.rs:
