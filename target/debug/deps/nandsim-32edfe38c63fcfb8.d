/root/repo/target/debug/deps/nandsim-32edfe38c63fcfb8.d: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

/root/repo/target/debug/deps/libnandsim-32edfe38c63fcfb8.rlib: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

/root/repo/target/debug/deps/libnandsim-32edfe38c63fcfb8.rmeta: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

crates/nand/src/lib.rs:
crates/nand/src/bus.rs:
crates/nand/src/die.rs:
crates/nand/src/error.rs:
crates/nand/src/geometry.rs:
crates/nand/src/timing.rs:
crates/nand/src/fault.rs:
crates/nand/src/power.rs:
crates/nand/src/store.rs:
crates/nand/src/wear.rs:
