/root/repo/target/debug/deps/fig20_compression-e3f8f298d9ad747a.d: crates/bench/src/bin/fig20_compression.rs

/root/repo/target/debug/deps/fig20_compression-e3f8f298d9ad747a: crates/bench/src/bin/fig20_compression.rs

crates/bench/src/bin/fig20_compression.rs:
