/root/repo/target/debug/deps/optimstore-8342c75ce314aeac.d: src/lib.rs

/root/repo/target/debug/deps/liboptimstore-8342c75ce314aeac.rlib: src/lib.rs

/root/repo/target/debug/deps/liboptimstore-8342c75ce314aeac.rmeta: src/lib.rs

src/lib.rs:
