/root/repo/target/debug/deps/optimstore_core-128cdb48a3612a60.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

/root/repo/target/debug/deps/liboptimstore_core-128cdb48a3612a60.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

/root/repo/target/debug/deps/liboptimstore_core-128cdb48a3612a60.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/layout.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/endurance.rs:
crates/core/src/energy.rs:
crates/core/src/protocol.rs:
