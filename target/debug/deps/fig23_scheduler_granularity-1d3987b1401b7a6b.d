/root/repo/target/debug/deps/fig23_scheduler_granularity-1d3987b1401b7a6b.d: crates/bench/src/bin/fig23_scheduler_granularity.rs

/root/repo/target/debug/deps/fig23_scheduler_granularity-1d3987b1401b7a6b: crates/bench/src/bin/fig23_scheduler_granularity.rs

crates/bench/src/bin/fig23_scheduler_granularity.rs:
