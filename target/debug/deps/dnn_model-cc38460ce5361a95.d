/root/repo/target/debug/deps/dnn_model-cc38460ce5361a95.d: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libdnn_model-cc38460ce5361a95.rlib: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libdnn_model-cc38460ce5361a95.rmeta: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/compute.rs:
crates/dnn/src/footprint.rs:
crates/dnn/src/partition.rs:
crates/dnn/src/schedule.rs:
crates/dnn/src/timeline.rs:
crates/dnn/src/zoo.rs:
