/root/repo/target/debug/deps/fig8_pcie-a7b1ecfc234b09c0.d: crates/bench/src/bin/fig8_pcie.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_pcie-a7b1ecfc234b09c0.rmeta: crates/bench/src/bin/fig8_pcie.rs Cargo.toml

crates/bench/src/bin/fig8_pcie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
