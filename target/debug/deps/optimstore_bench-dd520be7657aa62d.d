/root/repo/target/debug/deps/optimstore_bench-dd520be7657aa62d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/optimstore_bench-dd520be7657aa62d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
