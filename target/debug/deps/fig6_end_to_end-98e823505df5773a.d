/root/repo/target/debug/deps/fig6_end_to_end-98e823505df5773a.d: crates/bench/src/bin/fig6_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_end_to_end-98e823505df5773a.rmeta: crates/bench/src/bin/fig6_end_to_end.rs Cargo.toml

crates/bench/src/bin/fig6_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
