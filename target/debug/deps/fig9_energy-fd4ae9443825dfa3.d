/root/repo/target/debug/deps/fig9_energy-fd4ae9443825dfa3.d: crates/bench/src/bin/fig9_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_energy-fd4ae9443825dfa3.rmeta: crates/bench/src/bin/fig9_energy.rs Cargo.toml

crates/bench/src/bin/fig9_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
