/root/repo/target/debug/deps/all_experiments-cc66d6ce4e4d00a1.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-cc66d6ce4e4d00a1.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
