/root/repo/target/debug/deps/workloads-538f8e78da6fbbc9.d: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/debug/deps/workloads-538f8e78da6fbbc9: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
