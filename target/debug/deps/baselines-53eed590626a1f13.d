/root/repo/target/debug/deps/baselines-53eed590626a1f13.d: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-53eed590626a1f13.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/dram_offload.rs:
crates/baselines/src/host_nvme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
