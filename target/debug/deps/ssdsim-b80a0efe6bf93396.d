/root/repo/target/debug/deps/ssdsim-b80a0efe6bf93396.d: crates/ssd/src/lib.rs crates/ssd/src/address.rs crates/ssd/src/channel.rs crates/ssd/src/config.rs crates/ssd/src/device.rs crates/ssd/src/error.rs crates/ssd/src/nvme.rs crates/ssd/src/stats.rs crates/ssd/src/ftl/mod.rs crates/ssd/src/ftl/allocator.rs crates/ssd/src/ftl/mapping.rs crates/ssd/src/trace.rs

/root/repo/target/debug/deps/libssdsim-b80a0efe6bf93396.rlib: crates/ssd/src/lib.rs crates/ssd/src/address.rs crates/ssd/src/channel.rs crates/ssd/src/config.rs crates/ssd/src/device.rs crates/ssd/src/error.rs crates/ssd/src/nvme.rs crates/ssd/src/stats.rs crates/ssd/src/ftl/mod.rs crates/ssd/src/ftl/allocator.rs crates/ssd/src/ftl/mapping.rs crates/ssd/src/trace.rs

/root/repo/target/debug/deps/libssdsim-b80a0efe6bf93396.rmeta: crates/ssd/src/lib.rs crates/ssd/src/address.rs crates/ssd/src/channel.rs crates/ssd/src/config.rs crates/ssd/src/device.rs crates/ssd/src/error.rs crates/ssd/src/nvme.rs crates/ssd/src/stats.rs crates/ssd/src/ftl/mod.rs crates/ssd/src/ftl/allocator.rs crates/ssd/src/ftl/mapping.rs crates/ssd/src/trace.rs

crates/ssd/src/lib.rs:
crates/ssd/src/address.rs:
crates/ssd/src/channel.rs:
crates/ssd/src/config.rs:
crates/ssd/src/device.rs:
crates/ssd/src/error.rs:
crates/ssd/src/nvme.rs:
crates/ssd/src/stats.rs:
crates/ssd/src/ftl/mod.rs:
crates/ssd/src/ftl/allocator.rs:
crates/ssd/src/ftl/mapping.rs:
crates/ssd/src/trace.rs:
