/root/repo/target/debug/examples/quickstart-722a59143af6d9f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-722a59143af6d9f5: examples/quickstart.rs

examples/quickstart.rs:
