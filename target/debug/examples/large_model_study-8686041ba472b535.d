/root/repo/target/debug/examples/large_model_study-8686041ba472b535.d: examples/large_model_study.rs

/root/repo/target/debug/examples/large_model_study-8686041ba472b535: examples/large_model_study.rs

examples/large_model_study.rs:
