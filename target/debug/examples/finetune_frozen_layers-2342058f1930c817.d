/root/repo/target/debug/examples/finetune_frozen_layers-2342058f1930c817.d: examples/finetune_frozen_layers.rs Cargo.toml

/root/repo/target/debug/examples/libfinetune_frozen_layers-2342058f1930c817.rmeta: examples/finetune_frozen_layers.rs Cargo.toml

examples/finetune_frozen_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
