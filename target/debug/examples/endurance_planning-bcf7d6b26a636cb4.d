/root/repo/target/debug/examples/endurance_planning-bcf7d6b26a636cb4.d: examples/endurance_planning.rs

/root/repo/target/debug/examples/endurance_planning-bcf7d6b26a636cb4: examples/endurance_planning.rs

examples/endurance_planning.rs:
