/root/repo/target/debug/examples/production_loop-4a49bf190632cd7f.d: examples/production_loop.rs

/root/repo/target/debug/examples/production_loop-4a49bf190632cd7f: examples/production_loop.rs

examples/production_loop.rs:
