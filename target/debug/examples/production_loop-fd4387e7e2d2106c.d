/root/repo/target/debug/examples/production_loop-fd4387e7e2d2106c.d: examples/production_loop.rs Cargo.toml

/root/repo/target/debug/examples/libproduction_loop-fd4387e7e2d2106c.rmeta: examples/production_loop.rs Cargo.toml

examples/production_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
