/root/repo/target/debug/examples/quickstart-97502ca8ff105999.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-97502ca8ff105999: examples/quickstart.rs

examples/quickstart.rs:
