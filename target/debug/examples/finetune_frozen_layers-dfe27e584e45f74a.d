/root/repo/target/debug/examples/finetune_frozen_layers-dfe27e584e45f74a.d: examples/finetune_frozen_layers.rs

/root/repo/target/debug/examples/finetune_frozen_layers-dfe27e584e45f74a: examples/finetune_frozen_layers.rs

examples/finetune_frozen_layers.rs:
