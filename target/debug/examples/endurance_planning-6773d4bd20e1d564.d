/root/repo/target/debug/examples/endurance_planning-6773d4bd20e1d564.d: examples/endurance_planning.rs Cargo.toml

/root/repo/target/debug/examples/libendurance_planning-6773d4bd20e1d564.rmeta: examples/endurance_planning.rs Cargo.toml

examples/endurance_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
