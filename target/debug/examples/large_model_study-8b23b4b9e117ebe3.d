/root/repo/target/debug/examples/large_model_study-8b23b4b9e117ebe3.d: examples/large_model_study.rs

/root/repo/target/debug/examples/large_model_study-8b23b4b9e117ebe3: examples/large_model_study.rs

examples/large_model_study.rs:
