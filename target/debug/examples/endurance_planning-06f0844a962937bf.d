/root/repo/target/debug/examples/endurance_planning-06f0844a962937bf.d: examples/endurance_planning.rs

/root/repo/target/debug/examples/endurance_planning-06f0844a962937bf: examples/endurance_planning.rs

examples/endurance_planning.rs:
