/root/repo/target/debug/examples/production_loop-31ce7caac0566c1d.d: examples/production_loop.rs

/root/repo/target/debug/examples/production_loop-31ce7caac0566c1d: examples/production_loop.rs

examples/production_loop.rs:
