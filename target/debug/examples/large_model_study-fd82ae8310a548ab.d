/root/repo/target/debug/examples/large_model_study-fd82ae8310a548ab.d: examples/large_model_study.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_model_study-fd82ae8310a548ab.rmeta: examples/large_model_study.rs Cargo.toml

examples/large_model_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
