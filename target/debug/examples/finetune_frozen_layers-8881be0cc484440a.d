/root/repo/target/debug/examples/finetune_frozen_layers-8881be0cc484440a.d: examples/finetune_frozen_layers.rs

/root/repo/target/debug/examples/finetune_frozen_layers-8881be0cc484440a: examples/finetune_frozen_layers.rs

examples/finetune_frozen_layers.rs:
