/root/repo/target/release/deps/fig19_checkpoint-460ca574d4b16dce.d: crates/bench/src/bin/fig19_checkpoint.rs

/root/repo/target/release/deps/fig19_checkpoint-460ca574d4b16dce: crates/bench/src/bin/fig19_checkpoint.rs

crates/bench/src/bin/fig19_checkpoint.rs:
