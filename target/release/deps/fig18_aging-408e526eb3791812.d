/root/repo/target/release/deps/fig18_aging-408e526eb3791812.d: crates/bench/src/bin/fig18_aging.rs

/root/repo/target/release/deps/fig18_aging-408e526eb3791812: crates/bench/src/bin/fig18_aging.rs

crates/bench/src/bin/fig18_aging.rs:
