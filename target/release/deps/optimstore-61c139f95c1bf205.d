/root/repo/target/release/deps/optimstore-61c139f95c1bf205.d: src/lib.rs

/root/repo/target/release/deps/liboptimstore-61c139f95c1bf205.rlib: src/lib.rs

/root/repo/target/release/deps/liboptimstore-61c139f95c1bf205.rmeta: src/lib.rs

src/lib.rs:
