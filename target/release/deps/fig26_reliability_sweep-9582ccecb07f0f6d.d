/root/repo/target/release/deps/fig26_reliability_sweep-9582ccecb07f0f6d.d: crates/bench/src/bin/fig26_reliability_sweep.rs

/root/repo/target/release/deps/fig26_reliability_sweep-9582ccecb07f0f6d: crates/bench/src/bin/fig26_reliability_sweep.rs

crates/bench/src/bin/fig26_reliability_sweep.rs:
