/root/repo/target/release/deps/fig6_end_to_end-e89b7543034ef40b.d: crates/bench/src/bin/fig6_end_to_end.rs

/root/repo/target/release/deps/fig6_end_to_end-e89b7543034ef40b: crates/bench/src/bin/fig6_end_to_end.rs

crates/bench/src/bin/fig6_end_to_end.rs:
