/root/repo/target/release/deps/fig17_sparse_updates-76ea1631e321eb12.d: crates/bench/src/bin/fig17_sparse_updates.rs

/root/repo/target/release/deps/fig17_sparse_updates-76ea1631e321eb12: crates/bench/src/bin/fig17_sparse_updates.rs

crates/bench/src/bin/fig17_sparse_updates.rs:
