/root/repo/target/release/deps/fig25_crash_sweep-4e3d7b70a0ce3cfd.d: crates/bench/src/bin/fig25_crash_sweep.rs

/root/repo/target/release/deps/fig25_crash_sweep-4e3d7b70a0ce3cfd: crates/bench/src/bin/fig25_crash_sweep.rs

crates/bench/src/bin/fig25_crash_sweep.rs:
