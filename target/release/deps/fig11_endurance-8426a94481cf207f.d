/root/repo/target/release/deps/fig11_endurance-8426a94481cf207f.d: crates/bench/src/bin/fig11_endurance.rs

/root/repo/target/release/deps/fig11_endurance-8426a94481cf207f: crates/bench/src/bin/fig11_endurance.rs

crates/bench/src/bin/fig11_endurance.rs:
