/root/repo/target/release/deps/table2_ssd_config-bfa3ea9d48e311c3.d: crates/bench/src/bin/table2_ssd_config.rs

/root/repo/target/release/deps/table2_ssd_config-bfa3ea9d48e311c3: crates/bench/src/bin/table2_ssd_config.rs

crates/bench/src/bin/table2_ssd_config.rs:
