/root/repo/target/release/deps/fig4_step_latency-14c21b2f35b905ce.d: crates/bench/src/bin/fig4_step_latency.rs

/root/repo/target/release/deps/fig4_step_latency-14c21b2f35b905ce: crates/bench/src/bin/fig4_step_latency.rs

crates/bench/src/bin/fig4_step_latency.rs:
