/root/repo/target/release/deps/fig24_fault_sweep-4153b0ae4576f98c.d: crates/bench/src/bin/fig24_fault_sweep.rs

/root/repo/target/release/deps/fig24_fault_sweep-4153b0ae4576f98c: crates/bench/src/bin/fig24_fault_sweep.rs

crates/bench/src/bin/fig24_fault_sweep.rs:
