/root/repo/target/release/deps/workloads-a9d1d0376f735c50.d: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/release/deps/libworkloads-a9d1d0376f735c50.rlib: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/release/deps/libworkloads-a9d1d0376f735c50.rmeta: crates/workloads/src/lib.rs crates/workloads/src/aging.rs crates/workloads/src/faults.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/aging.rs:
crates/workloads/src/faults.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
