/root/repo/target/release/deps/fig5_speedup-b1e6c07768c21407.d: crates/bench/src/bin/fig5_speedup.rs

/root/repo/target/release/deps/fig5_speedup-b1e6c07768c21407: crates/bench/src/bin/fig5_speedup.rs

crates/bench/src/bin/fig5_speedup.rs:
