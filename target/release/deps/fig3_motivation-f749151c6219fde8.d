/root/repo/target/release/deps/fig3_motivation-f749151c6219fde8.d: crates/bench/src/bin/fig3_motivation.rs

/root/repo/target/release/deps/fig3_motivation-f749151c6219fde8: crates/bench/src/bin/fig3_motivation.rs

crates/bench/src/bin/fig3_motivation.rs:
