/root/repo/target/release/deps/optimstore_core-e94faa4370af06e5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

/root/repo/target/release/deps/liboptimstore_core-e94faa4370af06e5.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

/root/repo/target/release/deps/liboptimstore_core-e94faa4370af06e5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/layout.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/endurance.rs crates/core/src/energy.rs crates/core/src/protocol.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/layout.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/endurance.rs:
crates/core/src/energy.rs:
crates/core/src/protocol.rs:
