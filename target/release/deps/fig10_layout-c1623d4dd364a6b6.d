/root/repo/target/release/deps/fig10_layout-c1623d4dd364a6b6.d: crates/bench/src/bin/fig10_layout.rs

/root/repo/target/release/deps/fig10_layout-c1623d4dd364a6b6: crates/bench/src/bin/fig10_layout.rs

crates/bench/src/bin/fig10_layout.rs:
