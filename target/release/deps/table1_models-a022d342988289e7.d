/root/repo/target/release/deps/table1_models-a022d342988289e7.d: crates/bench/src/bin/table1_models.rs

/root/repo/target/release/deps/table1_models-a022d342988289e7: crates/bench/src/bin/table1_models.rs

crates/bench/src/bin/table1_models.rs:
