/root/repo/target/release/deps/optimstore-fdf8474d418da9aa.d: src/lib.rs

/root/repo/target/release/deps/liboptimstore-fdf8474d418da9aa.rlib: src/lib.rs

/root/repo/target/release/deps/liboptimstore-fdf8474d418da9aa.rmeta: src/lib.rs

src/lib.rs:
