/root/repo/target/release/deps/baselines-d2749dd2a5e54095.d: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

/root/repo/target/release/deps/libbaselines-d2749dd2a5e54095.rlib: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

/root/repo/target/release/deps/libbaselines-d2749dd2a5e54095.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dram_offload.rs crates/baselines/src/host_nvme.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dram_offload.rs:
crates/baselines/src/host_nvme.rs:
