/root/repo/target/release/deps/fig7_parallelism-5be0bb418ee2df03.d: crates/bench/src/bin/fig7_parallelism.rs

/root/repo/target/release/deps/fig7_parallelism-5be0bb418ee2df03: crates/bench/src/bin/fig7_parallelism.rs

crates/bench/src/bin/fig7_parallelism.rs:
