/root/repo/target/release/deps/fig13_scaling-1f60a15b41aa0b69.d: crates/bench/src/bin/fig13_scaling.rs

/root/repo/target/release/deps/fig13_scaling-1f60a15b41aa0b69: crates/bench/src/bin/fig13_scaling.rs

crates/bench/src/bin/fig13_scaling.rs:
