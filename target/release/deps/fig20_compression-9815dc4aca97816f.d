/root/repo/target/release/deps/fig20_compression-9815dc4aca97816f.d: crates/bench/src/bin/fig20_compression.rs

/root/repo/target/release/deps/fig20_compression-9815dc4aca97816f: crates/bench/src/bin/fig20_compression.rs

crates/bench/src/bin/fig20_compression.rs:
