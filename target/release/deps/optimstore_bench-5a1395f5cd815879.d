/root/repo/target/release/deps/optimstore_bench-5a1395f5cd815879.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/release/deps/liboptimstore_bench-5a1395f5cd815879.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/release/deps/liboptimstore_bench-5a1395f5cd815879.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
