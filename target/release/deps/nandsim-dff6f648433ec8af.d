/root/repo/target/release/deps/nandsim-dff6f648433ec8af.d: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

/root/repo/target/release/deps/libnandsim-dff6f648433ec8af.rlib: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

/root/repo/target/release/deps/libnandsim-dff6f648433ec8af.rmeta: crates/nand/src/lib.rs crates/nand/src/bus.rs crates/nand/src/die.rs crates/nand/src/error.rs crates/nand/src/geometry.rs crates/nand/src/timing.rs crates/nand/src/fault.rs crates/nand/src/power.rs crates/nand/src/store.rs crates/nand/src/wear.rs

crates/nand/src/lib.rs:
crates/nand/src/bus.rs:
crates/nand/src/die.rs:
crates/nand/src/error.rs:
crates/nand/src/geometry.rs:
crates/nand/src/timing.rs:
crates/nand/src/fault.rs:
crates/nand/src/power.rs:
crates/nand/src/store.rs:
crates/nand/src/wear.rs:
