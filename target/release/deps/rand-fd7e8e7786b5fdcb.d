/root/repo/target/release/deps/rand-fd7e8e7786b5fdcb.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-fd7e8e7786b5fdcb.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-fd7e8e7786b5fdcb.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
