/root/repo/target/release/deps/fig9_energy-71ddc725e6dd7e78.d: crates/bench/src/bin/fig9_energy.rs

/root/repo/target/release/deps/fig9_energy-71ddc725e6dd7e78: crates/bench/src/bin/fig9_energy.rs

crates/bench/src/bin/fig9_energy.rs:
