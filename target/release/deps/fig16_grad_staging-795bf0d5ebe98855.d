/root/repo/target/release/deps/fig16_grad_staging-795bf0d5ebe98855.d: crates/bench/src/bin/fig16_grad_staging.rs

/root/repo/target/release/deps/fig16_grad_staging-795bf0d5ebe98855: crates/bench/src/bin/fig16_grad_staging.rs

crates/bench/src/bin/fig16_grad_staging.rs:
