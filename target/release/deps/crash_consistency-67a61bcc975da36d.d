/root/repo/target/release/deps/crash_consistency-67a61bcc975da36d.d: tests/crash_consistency.rs

/root/repo/target/release/deps/crash_consistency-67a61bcc975da36d: tests/crash_consistency.rs

tests/crash_consistency.rs:
