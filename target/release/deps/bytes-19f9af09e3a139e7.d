/root/repo/target/release/deps/bytes-19f9af09e3a139e7.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-19f9af09e3a139e7.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-19f9af09e3a139e7.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
