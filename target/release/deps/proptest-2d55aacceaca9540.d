/root/repo/target/release/deps/proptest-2d55aacceaca9540.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2d55aacceaca9540.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2d55aacceaca9540.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
