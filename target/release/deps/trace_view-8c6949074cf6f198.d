/root/repo/target/release/deps/trace_view-8c6949074cf6f198.d: crates/bench/src/bin/trace_view.rs

/root/repo/target/release/deps/trace_view-8c6949074cf6f198: crates/bench/src/bin/trace_view.rs

crates/bench/src/bin/trace_view.rs:
