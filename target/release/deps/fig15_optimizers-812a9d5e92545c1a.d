/root/repo/target/release/deps/fig15_optimizers-812a9d5e92545c1a.d: crates/bench/src/bin/fig15_optimizers.rs

/root/repo/target/release/deps/fig15_optimizers-812a9d5e92545c1a: crates/bench/src/bin/fig15_optimizers.rs

crates/bench/src/bin/fig15_optimizers.rs:
