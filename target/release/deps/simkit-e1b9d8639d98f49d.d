/root/repo/target/release/deps/simkit-e1b9d8639d98f49d.d: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

/root/repo/target/release/deps/libsimkit-e1b9d8639d98f49d.rlib: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

/root/repo/target/release/deps/libsimkit-e1b9d8639d98f49d.rmeta: crates/simkit/src/lib.rs crates/simkit/src/event.rs crates/simkit/src/resource.rs crates/simkit/src/time.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/event.rs:
crates/simkit/src/resource.rs:
crates/simkit/src/time.rs:
crates/simkit/src/stats.rs:
