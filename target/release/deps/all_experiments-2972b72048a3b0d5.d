/root/repo/target/release/deps/all_experiments-2972b72048a3b0d5.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-2972b72048a3b0d5: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
