/root/repo/target/release/deps/workloads-6b535d329f2879a6.d: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/release/deps/libworkloads-6b535d329f2879a6.rlib: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

/root/repo/target/release/deps/libworkloads-6b535d329f2879a6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gradients.rs crates/workloads/src/slicing.rs crates/workloads/src/task.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gradients.rs:
crates/workloads/src/slicing.rs:
crates/workloads/src/task.rs:
