/root/repo/target/release/deps/table14_correctness-8bdb7202d81cb2a3.d: crates/bench/src/bin/table14_correctness.rs

/root/repo/target/release/deps/table14_correctness-8bdb7202d81cb2a3: crates/bench/src/bin/table14_correctness.rs

crates/bench/src/bin/table14_correctness.rs:
