/root/repo/target/release/deps/fig8_pcie-cb4827dac2d5804e.d: crates/bench/src/bin/fig8_pcie.rs

/root/repo/target/release/deps/fig8_pcie-cb4827dac2d5804e: crates/bench/src/bin/fig8_pcie.rs

crates/bench/src/bin/fig8_pcie.rs:
