/root/repo/target/release/deps/dnn_model-34619440d3e40f8c.d: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libdnn_model-34619440d3e40f8c.rlib: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libdnn_model-34619440d3e40f8c.rmeta: crates/dnn/src/lib.rs crates/dnn/src/compute.rs crates/dnn/src/footprint.rs crates/dnn/src/partition.rs crates/dnn/src/schedule.rs crates/dnn/src/timeline.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/compute.rs:
crates/dnn/src/footprint.rs:
crates/dnn/src/partition.rs:
crates/dnn/src/schedule.rs:
crates/dnn/src/timeline.rs:
crates/dnn/src/zoo.rs:
