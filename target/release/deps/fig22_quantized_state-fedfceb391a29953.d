/root/repo/target/release/deps/fig22_quantized_state-fedfceb391a29953.d: crates/bench/src/bin/fig22_quantized_state.rs

/root/repo/target/release/deps/fig22_quantized_state-fedfceb391a29953: crates/bench/src/bin/fig22_quantized_state.rs

crates/bench/src/bin/fig22_quantized_state.rs:
