/root/repo/target/release/deps/table21_time_to_train-bb8d545c5d0bad20.d: crates/bench/src/bin/table21_time_to_train.rs

/root/repo/target/release/deps/table21_time_to_train-bb8d545c5d0bad20: crates/bench/src/bin/table21_time_to_train.rs

crates/bench/src/bin/table21_time_to_train.rs:
