/root/repo/target/release/deps/fig12_batch-3724e878f61c63e4.d: crates/bench/src/bin/fig12_batch.rs

/root/repo/target/release/deps/fig12_batch-3724e878f61c63e4: crates/bench/src/bin/fig12_batch.rs

crates/bench/src/bin/fig12_batch.rs:
