/root/repo/target/release/deps/fig23_scheduler_granularity-614b4741c3234cf2.d: crates/bench/src/bin/fig23_scheduler_granularity.rs

/root/repo/target/release/deps/fig23_scheduler_granularity-614b4741c3234cf2: crates/bench/src/bin/fig23_scheduler_granularity.rs

crates/bench/src/bin/fig23_scheduler_granularity.rs:
