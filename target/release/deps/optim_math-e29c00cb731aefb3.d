/root/repo/target/release/deps/optim_math-e29c00cb731aefb3.d: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

/root/repo/target/release/deps/liboptim_math-e29c00cb731aefb3.rlib: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

/root/repo/target/release/deps/liboptim_math-e29c00cb731aefb3.rmeta: crates/optim/src/lib.rs crates/optim/src/bf16.rs crates/optim/src/f16.rs crates/optim/src/hyper.rs crates/optim/src/optimizer.rs crates/optim/src/compress.rs crates/optim/src/kernels.rs crates/optim/src/norms.rs crates/optim/src/quant.rs crates/optim/src/state.rs

crates/optim/src/lib.rs:
crates/optim/src/bf16.rs:
crates/optim/src/f16.rs:
crates/optim/src/hyper.rs:
crates/optim/src/optimizer.rs:
crates/optim/src/compress.rs:
crates/optim/src/kernels.rs:
crates/optim/src/norms.rs:
crates/optim/src/quant.rs:
crates/optim/src/state.rs:
